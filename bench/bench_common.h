// Shared experiment-stack builders for the paper-reproduction benchmarks.
//
// Each bench binary builds a "stack": a SchedCore with the scheduling
// classes of one experimental configuration registered in priority order
// (agents > Enoki/ghOSt policy > CFS), mirroring how the paper's testbed
// composes schedulers.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/ghost.h"
#include "src/simkernel/sched_core.h"

namespace enoki {

// ---- Command-line helpers shared by the bench binaries ----

// True when `flag` (e.g. "--quick") appears in argv.
inline bool BenchHasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

// Returns the value of a `--name=value` argument, or nullptr.
inline const char* BenchArgValue(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

// Machine-readable result sink, shared by all benchmarks: pass `--json=<path>`
// to any bench binary and it writes one row per reported metric in addition to
// its normal stdout tables. Rows are flat so trajectory tooling (and the CI
// perf-smoke gate) never has to scrape stdout:
//   {"bench": "...", "config": "...", "metric": "...", "value": N, "seed": N}
class BenchJson {
 public:
  // Parses `--json=<path>` from argv; disabled when the flag is absent.
  BenchJson(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    if (const char* path = BenchArgValue(argc, argv, "--json")) {
      path_ = path;
    }
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { Write(); }

  bool enabled() const { return !path_.empty(); }

  void Row(const std::string& config, const std::string& metric, double value,
           uint64_t seed = 0) {
    if (enabled()) {
      rows_.push_back(RowData{config, metric, value, seed});
    }
  }

  // Flushes rows to the --json path (no-op when disabled). Called by the
  // destructor; benches that need the file before exit may call it directly.
  void Write() {
    if (!enabled() || written_) {
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const RowData& r = rows_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"config\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.6f, \"seed\": %llu}%s\n",
                   Escaped(bench_).c_str(), Escaped(r.config).c_str(),
                   Escaped(r.metric).c_str(), r.value,
                   static_cast<unsigned long long>(r.seed), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    written_ = true;
  }

 private:
  struct RowData {
    std::string config;
    std::string metric;
    double value;
    uint64_t seed;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<RowData> rows_;
  bool written_ = false;
};

struct Stack {
  std::unique_ptr<SchedCore> core;
  std::unique_ptr<CfsClass> cfs;
  std::unique_ptr<EnokiRuntime> runtime;   // set for Enoki stacks
  std::unique_ptr<AgentClass> agents;      // set for ghOSt stacks
  std::unique_ptr<GhostClass> ghost;       // set for ghOSt stacks
  int policy = 0;      // the experiment's primary scheduling policy
  int cfs_policy = 0;  // the CFS policy id on this stack
};

// CFS-only stack.
inline Stack MakeCfsStack(MachineSpec spec = MachineSpec::OneSocket8(),
                          SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.cfs = std::make_unique<CfsClass>();
  s.policy = s.core->RegisterClass(s.cfs.get());
  s.cfs_policy = s.policy;
  return s;
}

// Enoki module above CFS.
inline Stack MakeEnokiStack(std::unique_ptr<EnokiSched> module,
                            MachineSpec spec = MachineSpec::OneSocket8(),
                            SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.runtime = std::make_unique<EnokiRuntime>(std::move(module));
  s.cfs = std::make_unique<CfsClass>();
  s.policy = s.core->RegisterClass(s.runtime.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  return s;
}

// ghOSt: agents > ghost > CFS. `agent_cpu` is the dedicated core for
// SOL/Shinjuku agents (ignored for per-CPU FIFO).
inline Stack MakeGhostStack(GhostClass::Mode mode, CpuMask worker_cpus, int agent_cpu,
                            MachineSpec spec = MachineSpec::OneSocket8(),
                            SimCosts costs = SimCosts{}) {
  Stack s;
  s.core = std::make_unique<SchedCore>(spec, costs);
  s.agents = std::make_unique<AgentClass>();
  s.ghost = std::make_unique<GhostClass>(mode, worker_cpus);
  s.cfs = std::make_unique<CfsClass>();
  const int agent_policy = s.core->RegisterClass(s.agents.get());
  s.policy = s.core->RegisterClass(s.ghost.get());
  s.cfs_policy = s.core->RegisterClass(s.cfs.get());
  s.ghost->SpawnAgents(agent_policy, agent_cpu);
  return s;
}

}  // namespace enoki

#endif  // BENCH_BENCH_COMMON_H_
