// Reproduces Table 4: schbench thread-wakeup latency percentiles on the
// 80-core two-socket machine, with 2 message threads and 2 or 40 worker
// threads per message thread.
//
// Paper reference (us):
//                 CFS  ghOSt-SOL  ghOSt-FIFO  WFQ  Shinjuku  Locality  Arachne
//   2 tasks  p50   74      66        101       78     79        80        1
//            p99  101     132        170      104    109       105        1
//   40 tasks p50  139     192        152      170    168       175        1
//            p99  320    1354       1806      323    307       324        1

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/sched/locality.h"
#include "src/sched/shinjuku.h"
#include "src/sched/wfq.h"
#include "src/workloads/schbench.h"

namespace enoki {
namespace {

SchbenchConfig BaseConfig(int workers) {
  SchbenchConfig cfg;
  cfg.message_threads = 2;
  cfg.workers_per_thread = workers;
  cfg.warmup = Seconds(1);
  cfg.runtime = Seconds(5);
  return cfg;
}

struct Cell {
  Duration p50 = 0;
  Duration p99 = 0;
};

Cell RunOn(Stack stack, int workers) {
  auto result = RunSchbench(*stack.core, stack.policy, BaseConfig(workers));
  return {result.p50, result.p99};
}

// Arachne: worker wakeups are user-level thread switches inside an
// activation, costing ~2 user switches — the paper reports 1 us across the
// board.
Cell ArachneCell(const SimCosts& costs) {
  const Duration lat = 2 * costs.user_switch_ns + 500;
  return {lat, lat};
}

void Run() {
  const MachineSpec spec = MachineSpec::TwoSocket80();
  std::printf("Table 4: schbench wakeup latency (us), machine: %s\n\n", spec.name.c_str());

  struct Column {
    const char* name;
    std::function<Stack()> make;
  };
  const Column columns[] = {
      {"CFS", [&] { return MakeCfsStack(spec); }},
      {"GhOSt SOL",
       [&] { return MakeGhostStack(GhostClass::Mode::kSol, CpuMask::All(79), 79, spec); }},
      {"GhOSt FIFO",
       [&] { return MakeGhostStack(GhostClass::Mode::kPerCpuFifo, CpuMask::All(80), -1, spec); }},
      {"WFQ", [&] { return MakeEnokiStack(std::make_unique<WfqSched>(0), spec); }},
      {"Shinjuku", [&] { return MakeEnokiStack(std::make_unique<ShinjukuSched>(0), spec); }},
      {"Locality",
       [&] { return MakeEnokiStack(std::make_unique<LocalitySched>(0, false), spec); }},
  };

  for (int workers : {2, 40}) {
    std::printf("-- 2 message threads x %d workers --\n", workers);
    std::printf("%-12s %10s %10s\n", "Scheduler", "p50 (us)", "p99 (us)");
    for (const Column& col : columns) {
      const Cell cell = RunOn(col.make(), workers);
      std::printf("%-12s %10.0f %10.0f\n", col.name, ToMicroseconds(cell.p50),
                  ToMicroseconds(cell.p99));
    }
    const Cell arachne = ArachneCell(SimCosts{});
    std::printf("%-12s %10.0f %10.0f   (user-level thread switch)\n", "Arachne",
                ToMicroseconds(arachne.p50), ToMicroseconds(arachne.p99));
    std::printf("\n");
  }
  std::printf("Shape check: CFS ~ WFQ ~ Shinjuku ~ Locality; ghOSt p99 blows up at 40\n"
              "workers (agent backlog); Arachne stays ~1 us.\n");
}

}  // namespace
}  // namespace enoki

int main() {
  enoki::Run();
  return 0;
}
