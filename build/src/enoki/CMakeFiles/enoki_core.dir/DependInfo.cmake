
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enoki/lock.cc" "src/enoki/CMakeFiles/enoki_core.dir/lock.cc.o" "gcc" "src/enoki/CMakeFiles/enoki_core.dir/lock.cc.o.d"
  "/root/repo/src/enoki/record.cc" "src/enoki/CMakeFiles/enoki_core.dir/record.cc.o" "gcc" "src/enoki/CMakeFiles/enoki_core.dir/record.cc.o.d"
  "/root/repo/src/enoki/replay.cc" "src/enoki/CMakeFiles/enoki_core.dir/replay.cc.o" "gcc" "src/enoki/CMakeFiles/enoki_core.dir/replay.cc.o.d"
  "/root/repo/src/enoki/runtime.cc" "src/enoki/CMakeFiles/enoki_core.dir/runtime.cc.o" "gcc" "src/enoki/CMakeFiles/enoki_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkernel/CMakeFiles/enoki_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/enoki_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
