file(REMOVE_RECURSE
  "CMakeFiles/enoki_core.dir/lock.cc.o"
  "CMakeFiles/enoki_core.dir/lock.cc.o.d"
  "CMakeFiles/enoki_core.dir/record.cc.o"
  "CMakeFiles/enoki_core.dir/record.cc.o.d"
  "CMakeFiles/enoki_core.dir/replay.cc.o"
  "CMakeFiles/enoki_core.dir/replay.cc.o.d"
  "CMakeFiles/enoki_core.dir/runtime.cc.o"
  "CMakeFiles/enoki_core.dir/runtime.cc.o.d"
  "libenoki_core.a"
  "libenoki_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
