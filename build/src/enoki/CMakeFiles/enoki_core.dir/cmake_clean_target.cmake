file(REMOVE_RECURSE
  "libenoki_core.a"
)
