# Empty dependencies file for enoki_core.
# This may be replaced when dependencies are built.
