file(REMOVE_RECURSE
  "libenoki_simkernel.a"
)
