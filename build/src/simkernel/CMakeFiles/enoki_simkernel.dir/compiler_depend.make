# Empty compiler generated dependencies file for enoki_simkernel.
# This may be replaced when dependencies are built.
