file(REMOVE_RECURSE
  "CMakeFiles/enoki_simkernel.dir/sched_core.cc.o"
  "CMakeFiles/enoki_simkernel.dir/sched_core.cc.o.d"
  "libenoki_simkernel.a"
  "libenoki_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
