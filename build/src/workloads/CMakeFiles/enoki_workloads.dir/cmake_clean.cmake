file(REMOVE_RECURSE
  "CMakeFiles/enoki_workloads.dir/apps.cc.o"
  "CMakeFiles/enoki_workloads.dir/apps.cc.o.d"
  "libenoki_workloads.a"
  "libenoki_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
