file(REMOVE_RECURSE
  "libenoki_workloads.a"
)
