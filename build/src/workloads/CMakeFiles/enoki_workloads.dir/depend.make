# Empty dependencies file for enoki_workloads.
# This may be replaced when dependencies are built.
