file(REMOVE_RECURSE
  "libenoki_sched.a"
)
