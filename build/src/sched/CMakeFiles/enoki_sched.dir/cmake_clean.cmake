file(REMOVE_RECURSE
  "CMakeFiles/enoki_sched.dir/cfs.cc.o"
  "CMakeFiles/enoki_sched.dir/cfs.cc.o.d"
  "CMakeFiles/enoki_sched.dir/ghost.cc.o"
  "CMakeFiles/enoki_sched.dir/ghost.cc.o.d"
  "CMakeFiles/enoki_sched.dir/wfq.cc.o"
  "CMakeFiles/enoki_sched.dir/wfq.cc.o.d"
  "libenoki_sched.a"
  "libenoki_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
