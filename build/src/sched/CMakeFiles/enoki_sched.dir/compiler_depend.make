# Empty compiler generated dependencies file for enoki_sched.
# This may be replaced when dependencies are built.
