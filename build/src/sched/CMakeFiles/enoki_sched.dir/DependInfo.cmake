
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cfs.cc" "src/sched/CMakeFiles/enoki_sched.dir/cfs.cc.o" "gcc" "src/sched/CMakeFiles/enoki_sched.dir/cfs.cc.o.d"
  "/root/repo/src/sched/ghost.cc" "src/sched/CMakeFiles/enoki_sched.dir/ghost.cc.o" "gcc" "src/sched/CMakeFiles/enoki_sched.dir/ghost.cc.o.d"
  "/root/repo/src/sched/wfq.cc" "src/sched/CMakeFiles/enoki_sched.dir/wfq.cc.o" "gcc" "src/sched/CMakeFiles/enoki_sched.dir/wfq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/enoki/CMakeFiles/enoki_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/enoki_simkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/enoki_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
