file(REMOVE_RECURSE
  "libenoki_base.a"
)
