# Empty compiler generated dependencies file for enoki_base.
# This may be replaced when dependencies are built.
