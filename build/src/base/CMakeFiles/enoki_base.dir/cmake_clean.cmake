file(REMOVE_RECURSE
  "CMakeFiles/enoki_base.dir/log.cc.o"
  "CMakeFiles/enoki_base.dir/log.cc.o.d"
  "libenoki_base.a"
  "libenoki_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
