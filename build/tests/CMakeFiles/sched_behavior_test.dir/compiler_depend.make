# Empty compiler generated dependencies file for sched_behavior_test.
# This may be replaced when dependencies are built.
