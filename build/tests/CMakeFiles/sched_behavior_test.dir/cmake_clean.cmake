file(REMOVE_RECURSE
  "CMakeFiles/sched_behavior_test.dir/sched_behavior_test.cc.o"
  "CMakeFiles/sched_behavior_test.dir/sched_behavior_test.cc.o.d"
  "sched_behavior_test"
  "sched_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
