file(REMOVE_RECURSE
  "CMakeFiles/enoki_test.dir/enoki_test.cc.o"
  "CMakeFiles/enoki_test.dir/enoki_test.cc.o.d"
  "enoki_test"
  "enoki_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enoki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
