# Empty compiler generated dependencies file for enoki_test.
# This may be replaced when dependencies are built.
