# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_test "/root/repo/build/tests/smoke_test")
set_tests_properties(smoke_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simkernel_test "/root/repo/build/tests/simkernel_test")
set_tests_properties(simkernel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(enoki_test "/root/repo/build/tests/enoki_test")
set_tests_properties(enoki_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sched_test "/root/repo/build/tests/sched_test")
set_tests_properties(sched_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sched_behavior_test "/root/repo/build/tests/sched_behavior_test")
set_tests_properties(sched_behavior_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;0;")
