file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pipe.dir/bench_table3_pipe.cc.o"
  "CMakeFiles/bench_table3_pipe.dir/bench_table3_pipe.cc.o.d"
  "bench_table3_pipe"
  "bench_table3_pipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
