file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_arachne.dir/bench_fig3_arachne.cc.o"
  "CMakeFiles/bench_fig3_arachne.dir/bench_fig3_arachne.cc.o.d"
  "bench_fig3_arachne"
  "bench_fig3_arachne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_arachne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
