# Empty dependencies file for bench_fig3_arachne.
# This may be replaced when dependencies are built.
