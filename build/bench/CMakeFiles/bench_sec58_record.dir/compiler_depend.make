# Empty compiler generated dependencies file for bench_sec58_record.
# This may be replaced when dependencies are built.
