file(REMOVE_RECURSE
  "CMakeFiles/bench_sec58_record.dir/bench_sec58_record.cc.o"
  "CMakeFiles/bench_sec58_record.dir/bench_sec58_record.cc.o.d"
  "bench_sec58_record"
  "bench_sec58_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec58_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
