file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_wfq.dir/bench_appendix_wfq.cc.o"
  "CMakeFiles/bench_appendix_wfq.dir/bench_appendix_wfq.cc.o.d"
  "bench_appendix_wfq"
  "bench_appendix_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
