# Empty dependencies file for bench_appendix_wfq.
# This may be replaced when dependencies are built.
