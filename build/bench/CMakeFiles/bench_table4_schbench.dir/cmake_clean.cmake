file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_schbench.dir/bench_table4_schbench.cc.o"
  "CMakeFiles/bench_table4_schbench.dir/bench_table4_schbench.cc.o.d"
  "bench_table4_schbench"
  "bench_table4_schbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_schbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
