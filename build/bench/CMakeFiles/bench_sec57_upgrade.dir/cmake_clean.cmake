file(REMOVE_RECURSE
  "CMakeFiles/bench_sec57_upgrade.dir/bench_sec57_upgrade.cc.o"
  "CMakeFiles/bench_sec57_upgrade.dir/bench_sec57_upgrade.cc.o.d"
  "bench_sec57_upgrade"
  "bench_sec57_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec57_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
