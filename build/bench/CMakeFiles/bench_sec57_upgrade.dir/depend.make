# Empty dependencies file for bench_sec57_upgrade.
# This may be replaced when dependencies are built.
