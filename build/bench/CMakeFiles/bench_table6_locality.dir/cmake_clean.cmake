file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_locality.dir/bench_table6_locality.cc.o"
  "CMakeFiles/bench_table6_locality.dir/bench_table6_locality.cc.o.d"
  "bench_table6_locality"
  "bench_table6_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
