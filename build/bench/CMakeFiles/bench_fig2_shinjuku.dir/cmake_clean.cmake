file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_shinjuku.dir/bench_fig2_shinjuku.cc.o"
  "CMakeFiles/bench_fig2_shinjuku.dir/bench_fig2_shinjuku.cc.o.d"
  "bench_fig2_shinjuku"
  "bench_fig2_shinjuku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_shinjuku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
