file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_apps.dir/bench_table5_apps.cc.o"
  "CMakeFiles/bench_table5_apps.dir/bench_table5_apps.cc.o.d"
  "bench_table5_apps"
  "bench_table5_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
