# Empty compiler generated dependencies file for example_live_upgrade.
# This may be replaced when dependencies are built.
