file(REMOVE_RECURSE
  "CMakeFiles/example_live_upgrade.dir/live_upgrade.cpp.o"
  "CMakeFiles/example_live_upgrade.dir/live_upgrade.cpp.o.d"
  "example_live_upgrade"
  "example_live_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
