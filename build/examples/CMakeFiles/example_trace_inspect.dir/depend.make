# Empty dependencies file for example_trace_inspect.
# This may be replaced when dependencies are built.
