file(REMOVE_RECURSE
  "CMakeFiles/example_trace_inspect.dir/trace_inspect.cpp.o"
  "CMakeFiles/example_trace_inspect.dir/trace_inspect.cpp.o.d"
  "example_trace_inspect"
  "example_trace_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
