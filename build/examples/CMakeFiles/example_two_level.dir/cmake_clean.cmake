file(REMOVE_RECURSE
  "CMakeFiles/example_two_level.dir/two_level.cpp.o"
  "CMakeFiles/example_two_level.dir/two_level.cpp.o.d"
  "example_two_level"
  "example_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
