# Empty compiler generated dependencies file for example_two_level.
# This may be replaced when dependencies are built.
