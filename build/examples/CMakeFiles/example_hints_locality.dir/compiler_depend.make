# Empty compiler generated dependencies file for example_hints_locality.
# This may be replaced when dependencies are built.
