file(REMOVE_RECURSE
  "CMakeFiles/example_hints_locality.dir/hints_locality.cpp.o"
  "CMakeFiles/example_hints_locality.dir/hints_locality.cpp.o.d"
  "example_hints_locality"
  "example_hints_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hints_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
