// Quickstart: write and run your first Enoki scheduler.
//
// This walks through the paper's section 2 example: a per-core
// first-come-first-serve scheduler. The FifoSched module (src/sched/fifo.h)
// implements exactly the flow the paper narrates — select_task_rq places a
// new task, task_new hands the scheduler a Schedulable token, pick_next_task
// returns the token as proof the task may run, and balance steals from the
// longest queue when a core would idle.
//
// Here we load it into the simulated kernel, run a small mixed workload,
// and print what happened.

#include <cstdio>
#include <memory>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

using namespace enoki;

int main() {
  // 1. Build a machine: 8 cores, one socket (the paper's i7-9700), with the
  //    default calibrated cost model.
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});

  // 2. Load the Enoki scheduler module. EnokiRuntime is the Enoki-C analog:
  //    it translates kernel callbacks into the message-passing EnokiSched
  //    API and validates every Schedulable token the module returns.
  EnokiRuntime runtime(std::make_unique<FifoSched>(/*policy_id=*/0));

  // 3. Register scheduling classes in priority order: the Enoki policy
  //    first, CFS below it as the default for everything else.
  CfsClass cfs;
  const int fifo_policy = core.RegisterClass(&runtime);
  const int cfs_policy = core.RegisterClass(&cfs);

  // 4. Create some tasks under the new policy: four CPU-bound tasks and a
  //    pair that block and wake each other through a pipe-like wait queue.
  for (int i = 0; i < 4; ++i) {
    core.CreateTask("cruncher-" + std::to_string(i),
                    std::make_unique<CpuBoundBody>(Milliseconds(20), Milliseconds(1)),
                    fifo_policy);
  }
  WaitQueue ping("ping");
  WaitQueue pong("pong");
  auto a_steps = std::make_shared<int>(200);
  core.CreateTask("chatter-a", MakeFnBody([&](SimContext&) -> Action {
                    if (*a_steps == 0) {
                      return Action::Exit();
                    }
                    if ((*a_steps)-- % 2 == 0) {
                      return Action::Wake(&ping, /*sync=*/true);
                    }
                    return Action::Block(&pong);
                  }),
                  fifo_policy);
  auto b_steps = std::make_shared<int>(200);
  core.CreateTask("chatter-b", MakeFnBody([&](SimContext&) -> Action {
                    if (*b_steps == 0) {
                      return Action::Exit();
                    }
                    if ((*b_steps)-- % 2 == 0) {
                      return Action::Block(&ping);
                    }
                    return Action::Wake(&pong, /*sync=*/true);
                  }),
                  fifo_policy);

  // A background CFS task shares the machine seamlessly: when the Enoki
  // policy has nothing runnable on a core, CFS gets it.
  Task* background = core.CreateTask(
      "background", std::make_unique<CpuBoundBody>(Milliseconds(10), Milliseconds(1)),
      cfs_policy);

  // 5. Run.
  core.Start();
  const bool all_done = core.RunUntilAllExit(Seconds(10));

  std::printf("quickstart: all tasks finished: %s\n", all_done ? "yes" : "NO");
  std::printf("simulated time:     %.3f ms\n", ToMilliseconds(core.now()));
  std::printf("context switches:   %llu\n",
              static_cast<unsigned long long>(core.context_switches()));
  std::printf("module calls:       %llu\n",
              static_cast<unsigned long long>(runtime.module_calls()));
  std::printf("pick errors:        %llu (the framework caught every bad token)\n",
              static_cast<unsigned long long>(runtime.pick_errors()));
  std::printf("background runtime: %.3f ms on CFS below the Enoki policy\n",
              ToMilliseconds(background->total_runtime()));
  std::printf("\nNext steps: examples/live_upgrade.cpp swaps this scheduler for a new\n"
              "version without stopping; examples/record_replay.cpp debugs it at\n"
              "userspace; examples/hints_locality.cpp feeds it application hints.\n");
  return all_done ? 0 : 1;
}
