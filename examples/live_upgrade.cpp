// Live upgrade: replace a running scheduler with a new version without
// rebooting, without killing tasks, and with a ~microsecond pause
// (paper section 3.2 / 5.7).
//
// We run the WFQ scheduler under load and upgrade it twice:
//
//  1. A *broken* v2 whose ReregisterInit rejects the transferred state.
//     Upgrades are transactional: the runtime checkpoints the outgoing
//     module before the swap, so the failed init rolls back to the old
//     scheduler — tasks never notice, nothing falls to CFS.
//  2. A working v2 (adds a pick counter). The swap succeeds and the new
//     module runs a probation window under tightened watchdog budgets
//     before the checkpoint of the old version is discarded.

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "src/enoki/runtime.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

using namespace enoki;

namespace {

// "Version 2" of the WFQ scheduler: same algorithm, plus a feature the old
// version lacked (counting pick operations as a stand-in for any new logic).
// It initializes itself from WfqSched::Transfer — the upgrade contract is
// the transfer-state type, not the scheduler's internals (section 3.2).
class WfqSchedV2 : public WfqSched {
 public:
  explicit WfqSchedV2(int policy_id) : WfqSched(policy_id) {}

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    ++picks_;
    return WfqSched::PickNextTask(cpu, std::move(curr));
  }

  uint64_t picks() const { return picks_; }

 private:
  uint64_t picks_ = 0;
};

// A v2 with a deployment bug: it cannot ingest the old version's state.
class BrokenWfqSchedV2 : public WfqSchedV2 {
 public:
  explicit BrokenWfqSchedV2(int policy_id) : WfqSchedV2(policy_id) {}
  void ReregisterInit(TransferState state) override {
    throw std::runtime_error("v2 state migration bug");
  }
};

}  // namespace

int main() {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  const int cfs_policy = core.RegisterClass(&cfs);

  // The watchdog supplies the probation machinery for transactional
  // upgrades (and the CFS fallback of last resort).
  runtime.EnableWatchdog(WatchdogConfig{}, cfs_policy);

  // 12 long-running tasks; they must survive both upgrade attempts untouched.
  for (int i = 0; i < 12; ++i) {
    core.CreateTask("worker-" + std::to_string(i),
                    std::make_unique<CpuBoundBody>(Milliseconds(30), Milliseconds(1)), policy);
  }

  // 3 ms in: deploy the broken build. The transaction aborts and rolls back.
  core.loop().ScheduleAfter(Milliseconds(3), [&] {
    const UpgradeReport report = runtime.Upgrade(std::make_unique<BrokenWfqSchedV2>(0));
    std::printf("[%.3f ms] broken v2 rejected: %s\n", ToMilliseconds(core.now()),
                report.error.c_str());
    std::printf("          checkpointed=%d rolled_back=%d -> old WFQ still scheduling\n",
                report.checkpointed ? 1 : 0, report.rolled_back ? 1 : 0);
  });

  // 5 ms in: deploy the fixed build, mid-load.
  WfqSchedV2* v2 = nullptr;
  core.loop().ScheduleAfter(Milliseconds(5), [&] {
    auto next = std::make_unique<WfqSchedV2>(0);
    v2 = next.get();
    const UpgradeReport report = runtime.Upgrade(std::move(next));
    std::printf("[%.3f ms] upgraded WFQ -> WFQ v2: pause %.2f us (paper: ~1.5 us on 8 cores)\n",
                ToMilliseconds(core.now()), ToMicroseconds(report.pause_ns));
    std::printf("          probation: %s\n", runtime.in_probation() ? "active" : "off");
  });

  core.Start();
  const bool done = core.RunUntilAllExit(Seconds(10));

  std::printf("all tasks completed across both upgrade attempts: %s\n", done ? "yes" : "NO");
  std::printf("pick errors: %llu (state stayed consistent)\n",
              static_cast<unsigned long long>(core.pick_errors()));
  if (v2 != nullptr) {
    std::printf("v2 feature active: %llu picks counted since upgrade\n",
                static_cast<unsigned long long>(v2->picks()));
  }
  std::printf("upgrades committed: %llu, rollbacks: %llu, probation cleared: %s\n",
              static_cast<unsigned long long>(runtime.upgrades()),
              static_cast<unsigned long long>(runtime.rollbacks()),
              runtime.in_probation() ? "no" : "yes");
  return done && runtime.upgrades() == 1 && runtime.rollbacks() == 1 ? 0 : 1;
}
