// Live upgrade: replace a running scheduler with a new version without
// rebooting, without killing tasks, and with a ~microsecond pause
// (paper section 3.2 / 5.7).
//
// We run the WFQ scheduler under load, then upgrade to WfqV2 — a new
// version that adds a starvation counter — passing the full scheduler state
// (queues, vruntimes, Schedulable tokens) through the typed TransferState.

#include <cstdio>
#include <memory>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

using namespace enoki;

namespace {

// "Version 2" of the WFQ scheduler: same algorithm, plus a feature the old
// version lacked (counting pick operations as a stand-in for any new logic).
// It initializes itself from WfqSched::Transfer — the upgrade contract is
// the transfer-state type, not the scheduler's internals (section 3.2).
class WfqSchedV2 : public WfqSched {
 public:
  explicit WfqSchedV2(int policy_id) : WfqSched(policy_id) {}

  std::optional<Schedulable> PickNextTask(int cpu, std::optional<Schedulable> curr) override {
    ++picks_;
    return WfqSched::PickNextTask(cpu, std::move(curr));
  }

  uint64_t picks() const { return picks_; }

 private:
  uint64_t picks_ = 0;
};

}  // namespace

int main() {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<WfqSched>(0));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);

  // 12 long-running tasks; they must survive the upgrade untouched.
  for (int i = 0; i < 12; ++i) {
    core.CreateTask("worker-" + std::to_string(i),
                    std::make_unique<CpuBoundBody>(Milliseconds(30), Milliseconds(1)), policy);
  }

  // Upgrade 5 ms in, mid-load.
  WfqSchedV2* v2 = nullptr;
  core.loop().ScheduleAfter(Milliseconds(5), [&] {
    auto next = std::make_unique<WfqSchedV2>(0);
    v2 = next.get();
    const UpgradeReport report = runtime.Upgrade(std::move(next));
    std::printf("[%.3f ms] upgraded WFQ -> WFQ v2: pause %.2f us (paper: ~1.5 us on 8 cores)\n",
                ToMilliseconds(core.now()), ToMicroseconds(report.pause_ns));
  });

  core.Start();
  const bool done = core.RunUntilAllExit(Seconds(10));

  std::printf("all tasks completed across the upgrade: %s\n", done ? "yes" : "NO");
  std::printf("pick errors: %llu (state stayed consistent)\n",
              static_cast<unsigned long long>(core.pick_errors()));
  if (v2 != nullptr) {
    std::printf("v2 feature active: %llu picks counted since upgrade\n",
                static_cast<unsigned long long>(v2->picks()));
  }
  std::printf("upgrades performed: %llu\n", static_cast<unsigned long long>(runtime.upgrades()));
  return done ? 0 : 1;
}
