// Record and replay: debug a kernel scheduler at userspace
// (paper section 3.4 / 5.8).
//
// We run the WFQ scheduler with recording active: every call into the
// scheduler, its response, and every shim-lock acquisition is appended to a
// ring buffer drained by a userspace record task and saved to a file. We
// then reload that file and replay it against a *fresh instance of the same
// scheduler code* on real threads, enforcing the recorded lock order, and
// validate every response. Finally, we replay against a deliberately
// different scheduler to show that replay validation catches divergence.

#include <cstdio>
#include <memory>

#include "src/enoki/replay.h"
#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/fifo.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

using namespace enoki;

int main() {
  const char* trace_path = "/tmp/enoki_example_trace.log";

  // ---- Record ----
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);  // must be installed before the module's locks exist
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    const int cfs_policy = core.RegisterClass(&cfs);

    // The userspace record task drains the shared ring buffer to the log;
    // scheduler context cannot write files (section 3.4).
    core.CreateTaskOn("record-task", MakeFnBody([&recorder](SimContext&) -> Action {
                        recorder.Drain();
                        return Action::Sleep(Milliseconds(1));
                      }),
                      cfs_policy, 0, CpuMask::Single(7));

    // Workload: mixed compute/sleep tasks with different priorities, packed
    // onto two cores so run-queue *order* matters (WFQ picks by weighted
    // vruntime; a FIFO scheduler would pick differently).
    for (int i = 0; i < 6; ++i) {
      auto left = std::make_shared<int>(80);
      core.CreateTaskOn("app-" + std::to_string(i),
                        MakeFnBody([left](SimContext&) -> Action {
                          if (*left == 0) {
                            return Action::Exit();
                          }
                          --*left;
                          return (*left % 3 == 0) ? Action::Sleep(Microseconds(200))
                                                  : Action::Compute(Microseconds(350));
                        }),
                        policy, (i % 3) * 5 - 5, CpuMask::Single(i % 2));
    }
    core.Start();
    core.RunUntilAllExit(core.now() + Seconds(10));
  }
  SetLockHooks(nullptr);
  recorder.Drain();
  recorder.SaveToFile(trace_path);
  std::printf("recorded %zu entries (%llu dropped) -> %s\n", recorder.log().size(),
              static_cast<unsigned long long>(recorder.dropped()), trace_path);

  // ---- Replay against the same scheduler code ----
  std::vector<RecordEntry> trace;
  if (!Recorder::LoadFromFile(trace_path, &trace)) {
    std::printf("failed to load trace\n");
    return 1;
  }
  {
    ReplayEngine engine(trace, 8);
    engine.InstallHooks();  // before constructing the module: lock creation order matters
    auto module = std::make_unique<WfqSched>(0);
    module->Attach(engine.env());
    const ReplayResult result = engine.Run(module.get());
    std::printf("replay (WFQ, same code): %llu calls, %llu mismatches, %llu lock waits "
                "[%s]\n",
                static_cast<unsigned long long>(result.calls_replayed),
                static_cast<unsigned long long>(result.response_mismatches),
                static_cast<unsigned long long>(result.lock_blocks),
                result.response_mismatches == 0 ? "VALIDATED" : "DIVERGED");
  }

  // ---- Replay against a different scheduler: divergence is detected ----
  {
    ReplayEngine engine(trace, 8);
    engine.InstallHooks();
    auto module = std::make_unique<FifoSched>(0);
    module->Attach(engine.env());
    const ReplayResult result = engine.Run(module.get());
    std::printf("replay (FIFO, wrong code): %llu calls, %llu mismatches "
                "[divergence %s]\n",
                static_cast<unsigned long long>(result.calls_replayed),
                static_cast<unsigned long long>(result.response_mismatches),
                result.response_mismatches > 0 ? "detected, as expected" : "NOT detected!");
  }
  return 0;
}
