// Trace inspection: a small utility over the record-file format.
//
// Usage: example_trace_inspect [trace-file]
//
// With no argument, it records a short WFQ run itself and then inspects it.
// Prints the call mix, per-kernel-thread activity, lock statistics, and the
// head of the trace — the kind of first look a developer takes before
// replaying a misbehaving scheduler.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/enoki/record.h"
#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/pipe.h"

using namespace enoki;

namespace {

std::string RecordDefaultTrace(const char* path) {
  Recorder recorder(1 << 20);
  SetLockHooks(&recorder);
  {
    SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
    EnokiRuntime runtime(std::make_unique<WfqSched>(0));
    runtime.SetRecorder(&recorder);
    CfsClass cfs;
    const int policy = core.RegisterClass(&runtime);
    core.RegisterClass(&cfs);
    PipeBenchConfig cfg;
    cfg.messages = 500;
    RunPipeBench(core, policy, cfg);
  }
  SetLockHooks(nullptr);
  recorder.Drain();
  recorder.SaveToFile(path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = RecordDefaultTrace("/tmp/enoki_inspect_demo.log");
    std::printf("(no trace given: recorded a demo WFQ pipe run to %s)\n\n", path.c_str());
  }

  std::vector<RecordEntry> trace;
  if (!Recorder::LoadFromFile(path, &trace) || trace.empty()) {
    std::fprintf(stderr, "could not load trace from %s\n", path.c_str());
    return 1;
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("entries: %zu, spanning %.3f ms of kernel time\n\n", trace.size(),
              ToMilliseconds(trace.back().time - trace.front().time));

  // Call mix.
  std::map<std::string, uint64_t> by_type;
  std::map<int32_t, uint64_t> by_kthread;
  std::map<uint64_t, uint64_t> lock_acquires;
  uint64_t picks = 0;
  uint64_t idle_picks = 0;
  for (const RecordEntry& e : trace) {
    by_type[RecordTypeName(e.type)]++;
    by_kthread[e.kthread]++;
    if (e.type == RecordType::kLockAcquire) {
      lock_acquires[e.arg[0]]++;
    }
    if (e.type == RecordType::kPickNextTask) {
      ++picks;
      if (e.resp0 == 0) {
        ++idle_picks;
      }
    }
  }

  std::printf("call mix:\n");
  std::vector<std::pair<uint64_t, std::string>> sorted;
  for (const auto& [name, count] : by_type) {
    sorted.emplace_back(count, name);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  for (const auto& [count, name] : sorted) {
    std::printf("  %-18s %8llu\n", name.c_str(), static_cast<unsigned long long>(count));
  }

  if (picks > 0) {
    std::printf("\npick_next_task: %llu calls, %.1f%% returned idle\n",
                static_cast<unsigned long long>(picks),
                100.0 * static_cast<double>(idle_picks) / static_cast<double>(picks));
  }

  std::printf("\nper kernel thread (CPU):\n");
  for (const auto& [kthread, count] : by_kthread) {
    std::printf("  kthread %-3d %8llu entries\n", kthread,
                static_cast<unsigned long long>(count));
  }

  std::printf("\nlocks: %zu distinct, acquisitions per lock:\n", lock_acquires.size());
  for (const auto& [lock, count] : lock_acquires) {
    std::printf("  lock %-6llu %8llu acquisitions\n", static_cast<unsigned long long>(lock),
                static_cast<unsigned long long>(count));
  }

  std::printf("\nfirst 10 entries:\n");
  for (size_t i = 0; i < std::min<size_t>(10, trace.size()); ++i) {
    const RecordEntry& e = trace[i];
    std::printf("  #%-6llu t=%9.3fus k%-2d %-16s pid=%-4llu cpu=%-2d resp=%llu\n",
                static_cast<unsigned long long>(e.seq), ToMicroseconds(e.time), e.kthread,
                RecordTypeName(e.type), static_cast<unsigned long long>(e.pid), e.cpu,
                static_cast<unsigned long long>(e.resp0));
  }
  std::printf("\nTo replay this trace, see examples/record_replay.cpp.\n");
  return 0;
}
