// Two-level scheduling with the Enoki core arbiter
// (paper sections 3.3, 4.2.4, 5.6).
//
// An application's user-level runtime requests CPU cores through the
// user-to-kernel hint queue; the in-kernel arbiter grants whole cores to
// scheduler activations and asks for them back through the kernel-to-user
// queue when demand drops. This example drives the arbiter directly
// (the full memcached workload lives in bench_fig3_arachne) and prints the
// grant/reclaim conversation.

#include <cstdio>
#include <memory>

#include "src/enoki/runtime.h"
#include "src/sched/arbiter.h"
#include "src/sched/cfs.h"
#include "src/simkernel/bodies.h"
#include "src/simkernel/sched_core.h"

using namespace enoki;

int main() {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  // Arbitrated cores: 1..7 (core 0 reserved for background work).
  EnokiRuntime runtime(std::make_unique<ArbiterSched>(0, 1, 7));
  CfsClass cfs;
  const int arbiter_policy = core.RegisterClass(&runtime);
  const int cfs_policy = core.RegisterClass(&cfs);
  const int hint_q = runtime.CreateHintQueue(256);
  const int rev_q = runtime.CreateRevQueue(256);
  constexpr uint64_t kAppId = 1;

  // Four scheduler activations. Each spins running "user threads" while it
  // owns a core, and parks when the runtime asks for the core back.
  auto reclaim_flag = std::make_shared<std::vector<bool>>(4, false);
  auto parks = std::make_shared<std::vector<std::unique_ptr<WaitQueue>>>();
  std::vector<Task*> activations;
  for (int i = 0; i < 4; ++i) {
    parks->push_back(std::make_unique<WaitQueue>("park"));
  }
  for (int i = 0; i < 4; ++i) {
    const int idx = i;
    auto first = std::make_shared<bool>(true);
    activations.push_back(core.CreateTask(
        "activation-" + std::to_string(i),
        MakeFnBody([reclaim_flag, parks, idx, first](SimContext&) -> Action {
          if (*first || (*reclaim_flag)[idx]) {
            *first = false;
            (*reclaim_flag)[idx] = false;
            return Action::Block((*parks)[idx].get());
          }
          return Action::Compute(Microseconds(100));  // run user-level threads
        }),
        arbiter_policy));
    HintBlob bind;
    bind.w[0] = ArbiterSched::kBindActivation;
    bind.w[1] = kAppId;
    bind.w[2] = activations.back()->pid();
    runtime.SendHint(hint_q, bind);
  }

  // The runtime controller: request 3 cores at t=1ms, drop to 1 at t=10ms.
  auto request = [&](uint64_t n) {
    HintBlob req;
    req.w[0] = ArbiterSched::kReqCores;
    req.w[1] = kAppId;
    req.w[2] = n;
    runtime.SendHint(hint_q, req);
    std::printf("[%6.2f ms] runtime: requesting %llu cores\n", ToMilliseconds(core.now()),
                static_cast<unsigned long long>(n));
  };
  // Poll the reverse queue and apply grants/reclaims, like the Arachne
  // runtime does.
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&core, &runtime, rev_q, reclaim_flag, parks, &activations, poll] {
    while (auto hint = runtime.PollRevHint(rev_q)) {
      const uint64_t pid = hint->w[3];
      for (size_t i = 0; i < activations.size(); ++i) {
        if (activations[i]->pid() != pid) {
          continue;
        }
        if (hint->w[0] == ArbiterSched::kGrantCore) {
          std::printf("[%6.2f ms] kernel: granted core %llu to activation %zu\n",
                      ToMilliseconds(core.now()), static_cast<unsigned long long>(hint->w[2]),
                      i);
          core.Signal((*parks)[i].get());
        } else {
          std::printf("[%6.2f ms] kernel: reclaiming core %llu from activation %zu\n",
                      ToMilliseconds(core.now()), static_cast<unsigned long long>(hint->w[2]),
                      i);
          (*reclaim_flag)[i] = true;
        }
        break;
      }
    }
    core.loop().ScheduleAfter(Milliseconds(1), *poll);
  };

  core.loop().ScheduleAfter(Milliseconds(1), [&] { request(3); });
  core.loop().ScheduleAfter(Milliseconds(10), [&] { request(1); });
  core.loop().ScheduleAfter(Milliseconds(1), *poll);

  // Background CFS work shows core sharing: it gets the non-granted cores.
  core.CreateTask("background", std::make_unique<CpuBoundBody>(Milliseconds(40), Milliseconds(1)),
                  cfs_policy);

  core.Start();
  core.RunFor(Milliseconds(20));

  auto* arbiter = static_cast<ArbiterSched*>(runtime.module());
  std::printf("\nfinal state: %zu cores granted to app %llu, %zu cores free for CFS\n",
              arbiter->granted_cores(kAppId), static_cast<unsigned long long>(kAppId),
              arbiter->free_cores());
  return 0;
}
