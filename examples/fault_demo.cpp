// Fault containment: a buggy scheduler cannot take the (simulated) kernel
// down with it — and with a supervisor, it usually doesn't even lose its job.
//
// We wrap the WFQ scheduler in a FaultInjector firing the full fault menu —
// stale/forged/double-returned Schedulable tokens, dropped enqueues, escaped
// exceptions, 20 ms callback spins, hint floods — and arm the watchdog plus
// the ModuleSupervisor. The pipe ping-pong runs underneath. When a fault
// crosses a watchdog threshold the recovery ladder engages: the supervisor
// rebuilds a fresh module instance after a simulated-time backoff, restores
// its accounting state from the last good checkpoint, and puts it on
// probation. Only when the restart budget for the window is exhausted does
// the runtime fall to the terminal rung — quarantine, tasks re-policied
// onto CFS, and a CrashReport (with the module's last calls, courtesy of
// the record system) explaining what happened. Every task still completes.
//
// The ladder's supply line runs too: a periodic checkpoint cadence fills the
// generation ring between upgrades, and the fault menu includes crashes
// inside CheckpointNow itself — a save that dies mid-cadence escalates like
// any other escaped exception, and the ring still holds the generations that
// sealed before it.

#include <cstdio>
#include <memory>

#include "src/enoki/record.h"
#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/supervisor.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/pipe.h"

using namespace enoki;

int main() {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});

  // WFQ, sabotaged: every kind of module misbehavior at modest rates,
  // including crashes inside the periodic checkpoint save itself.
  const uint64_t seed = 42;
  FaultPlan plan = FaultPlan::FullMenu(seed);
  plan.checkpoint_crash_rate = 0.25;
  auto injector = std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);

  EnokiRuntime runtime(std::move(injector));
  CfsClass cfs;
  const int enoki_policy = core.RegisterClass(&runtime);
  const int cfs_policy = core.RegisterClass(&cfs);

  // Record mode gives the CrashReport its last-calls tail.
  Recorder recorder(1024);
  runtime.SetRecorder(&recorder);
  runtime.CreateRevQueue(64);

  WatchdogConfig wcfg;
  wcfg.callback_budget_ns = Milliseconds(5);
  wcfg.max_escaped_exceptions = 3;
  wcfg.max_pick_errors = 8;
  wcfg.starvation_bound_ns = Milliseconds(20);
  runtime.EnableWatchdog(wcfg, cfs_policy);

  // Self-healing rung: up to 3 supervised restarts per rolling second, each
  // restored from the newest valid generation in the ring. (The replacement
  // is just as buggy — same seed — so the demo usually climbs the whole
  // ladder.)
  runtime.EnableSupervisor(SupervisorConfig{}, [plan] {
    return std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);
  });

  // Periodic cadence: a fresh generation every 500us of simulated time, so a
  // restore never has to reach back further than one cadence interval.
  runtime.SetCheckpointInterval(Microseconds(500));

  std::printf("running pipe ping-pong under a sabotaged WFQ (seed %llu)...\n",
              static_cast<unsigned long long>(seed));

  PipeBenchConfig pcfg;
  pcfg.messages = 2000;
  auto result = RunPipeBench(core, enoki_policy, pcfg);

  // The supervisor may have swapped in fresh injector instances; read the
  // counts from whichever one is currently installed.
  const auto& counts = static_cast<FaultInjector*>(runtime.module())->counts();
  std::printf("\ninjected faults (current instance): %llu total (%llu dropped enqueues,\n"
              "  %llu stale tokens, %llu wrong-cpu tokens, %llu double returns, %llu throws,\n"
              "  %llu busy spins, %llu hint floods); %llu tokens recovered via pnt_err\n",
              static_cast<unsigned long long>(counts.total()),
              static_cast<unsigned long long>(counts.dropped_enqueues),
              static_cast<unsigned long long>(counts.stale_tokens),
              static_cast<unsigned long long>(counts.wrong_cpu_tokens),
              static_cast<unsigned long long>(counts.double_returns),
              static_cast<unsigned long long>(counts.throws),
              static_cast<unsigned long long>(counts.busy_spins),
              static_cast<unsigned long long>(counts.hint_floods),
              static_cast<unsigned long long>(counts.reinjected));

  std::printf("\ncheckpoint cadence: %llu periodic saves, %llu saves crashed mid-cadence,\n"
              "  %llu generations in the ring (newest seq %llu)\n",
              static_cast<unsigned long long>(runtime.periodic_checkpoints()),
              static_cast<unsigned long long>(runtime.checkpoint_save_failures()),
              static_cast<unsigned long long>(runtime.checkpoint_store().size()),
              static_cast<unsigned long long>(
                  runtime.checkpoint_store().newest() ? runtime.checkpoint_store().newest()->sequence
                                                      : 0));

  std::printf("\nrecovery ladder: %llu supervised restarts, %llu checkpoint rejects, "
              "%llu escalations\n%s\n",
              static_cast<unsigned long long>(runtime.module_restarts()),
              static_cast<unsigned long long>(runtime.checkpoint_rejects()),
              static_cast<unsigned long long>(runtime.supervisor()->escalations()),
              runtime.supervisor()->TimelineString().c_str());

  if (!runtime.RestoreTimelineString().empty()) {
    std::printf("\nlast restore walk (depth %llu, %.1fus of work lost):\n%s\n",
                static_cast<unsigned long long>(runtime.last_restore_depth()),
                ToMicroseconds(runtime.last_restore_age_ns()),
                runtime.RestoreTimelineString().c_str());
  }

  if (runtime.quarantined()) {
    std::printf("\nrestart budget exhausted; module quarantined. CrashReport:\n%s\n",
                runtime.crash_report()->ToString().c_str());
  } else {
    std::printf("\nmodule still in service: the ladder absorbed every fault.\n");
  }

  std::printf("\nall tasks completed: %s (simulated time %.2f ms)\n",
              result.completed ? "yes" : "NO — containment failed!",
              ToMicroseconds(core.now()) / 1000.0);
  return result.completed ? 0 : 1;
}
