// Fault containment: a buggy scheduler cannot take the (simulated) kernel
// down with it.
//
// We wrap the WFQ scheduler in a FaultInjector firing the full fault menu —
// stale/forged/double-returned Schedulable tokens, dropped enqueues, escaped
// exceptions, 20 ms callback spins, hint floods — and arm the watchdog. The
// pipe ping-pong runs underneath. At some point a fault crosses a watchdog
// threshold: the module is quarantined, its tasks are re-policied onto CFS
// through the quiesce path, and a CrashReport (with the module's last calls,
// courtesy of the record system) explains what happened. Every task still
// completes — the same containment story sched_ext gives a misbehaving BPF
// scheduler: kill it, fall back to CFS, leave a debug dump.

#include <cstdio>
#include <memory>

#include "src/enoki/record.h"
#include "src/enoki/runtime.h"
#include "src/fault/injector.h"
#include "src/fault/watchdog.h"
#include "src/sched/cfs.h"
#include "src/sched/wfq.h"
#include "src/simkernel/sched_core.h"
#include "src/workloads/pipe.h"

using namespace enoki;

int main() {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});

  // WFQ, sabotaged: every kind of module misbehavior at modest rates.
  FaultPlan plan = FaultPlan::FullMenu(/*seed=*/42);
  auto injector = std::make_unique<FaultInjector>(std::make_unique<WfqSched>(0), plan);
  FaultInjector* inj = injector.get();

  EnokiRuntime runtime(std::move(injector));
  CfsClass cfs;
  const int enoki_policy = core.RegisterClass(&runtime);
  const int cfs_policy = core.RegisterClass(&cfs);

  // Record mode gives the CrashReport its last-calls tail.
  Recorder recorder(1024);
  runtime.SetRecorder(&recorder);
  runtime.CreateRevQueue(64);

  WatchdogConfig wcfg;
  wcfg.callback_budget_ns = Milliseconds(5);
  wcfg.max_escaped_exceptions = 3;
  wcfg.max_pick_errors = 8;
  wcfg.starvation_bound_ns = Milliseconds(20);
  runtime.EnableWatchdog(wcfg, cfs_policy);

  std::printf("running pipe ping-pong under a sabotaged WFQ (seed %llu)...\n",
              static_cast<unsigned long long>(plan.seed));

  PipeBenchConfig pcfg;
  pcfg.messages = 2000;
  auto result = RunPipeBench(core, enoki_policy, pcfg);

  const auto& counts = inj->counts();
  std::printf("\ninjected faults: %llu total (%llu dropped enqueues, %llu stale tokens,\n"
              "  %llu wrong-cpu tokens, %llu double returns, %llu throws, %llu busy spins,\n"
              "  %llu hint floods); %llu tokens recovered via pnt_err\n",
              static_cast<unsigned long long>(counts.total()),
              static_cast<unsigned long long>(counts.dropped_enqueues),
              static_cast<unsigned long long>(counts.stale_tokens),
              static_cast<unsigned long long>(counts.wrong_cpu_tokens),
              static_cast<unsigned long long>(counts.double_returns),
              static_cast<unsigned long long>(counts.throws),
              static_cast<unsigned long long>(counts.busy_spins),
              static_cast<unsigned long long>(counts.hint_floods),
              static_cast<unsigned long long>(counts.reinjected));

  if (runtime.quarantined()) {
    std::printf("\nwatchdog tripped; module quarantined. CrashReport:\n%s\n",
                runtime.crash_report()->ToString().c_str());
  } else {
    std::printf("\nwatchdog never tripped: validation absorbed every fault.\n");
  }

  std::printf("\nall tasks completed: %s (simulated time %.2f ms)\n",
              result.completed ? "yes" : "NO — containment failed!",
              ToMicroseconds(core.now()) / 1000.0);
  return result.completed ? 0 : 1;
}
