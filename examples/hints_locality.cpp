// Custom scheduler hints: co-locating communicating threads
// (paper section 3.3 / 5.5).
//
// An application with two groups of threads that message each other heavily
// sends locality hints (thread id + group id) through the user-to-kernel
// hint queue. The locality-aware scheduler co-locates each group on one
// core, converting expensive cross-core wakeups of deep-idle cores into
// cheap same-core handoffs. We run the same workload with and without hints
// and print both tails.

#include <cstdio>
#include <memory>

#include "src/enoki/runtime.h"
#include "src/sched/cfs.h"
#include "src/sched/locality.h"
#include "src/workloads/schbench.h"

using namespace enoki;

namespace {

SchbenchResult RunOnce(bool use_hints) {
  SchedCore core(MachineSpec::OneSocket8(), SimCosts{});
  EnokiRuntime runtime(std::make_unique<LocalitySched>(0, use_hints));
  CfsClass cfs;
  const int policy = core.RegisterClass(&runtime);
  core.RegisterClass(&cfs);

  SchbenchConfig cfg;
  cfg.message_threads = 2;
  cfg.workers_per_thread = 2;
  cfg.worker_work_ns = Microseconds(3);
  cfg.warmup = Milliseconds(200);
  cfg.runtime = Seconds(3);
  if (use_hints) {
    // The harness sends one hint per thread: {pid, group}. Unlike cpusets,
    // the hint names only the grouping; the scheduler picks (and may
    // override) the core.
    cfg.hint_runtime = &runtime;
    cfg.hint_queue = runtime.CreateHintQueue(1024);
  }
  return RunSchbench(core, policy, cfg);
}

}  // namespace

int main() {
  const SchbenchResult random_placement = RunOnce(/*use_hints=*/false);
  const SchbenchResult with_hints = RunOnce(/*use_hints=*/true);

  std::printf("message/worker wakeup latency, 2 groups x (1 msg + 2 workers):\n\n");
  std::printf("%-22s %10s %10s\n", "placement", "p50 (us)", "p99 (us)");
  std::printf("%-22s %10.0f %10.0f\n", "random (no hints)",
              ToMicroseconds(random_placement.p50), ToMicroseconds(random_placement.p99));
  std::printf("%-22s %10.0f %10.0f\n", "co-located (hints)", ToMicroseconds(with_hints.p50),
              ToMicroseconds(with_hints.p99));
  const double speedup = static_cast<double>(random_placement.p99) /
                         static_cast<double>(std::max<Duration>(with_hints.p99, 1));
  std::printf("\nhints cut the p99 wakeup latency by %.1fx\n", speedup);
  return 0;
}
